// Cross-validation tests between independent implementations of the same
// semantics: event sim vs GEMM path on stride-2 convs, T2FSNN vs the base-2
// network under aligned kernels, log-quantized weights through the LogPe
// datapath, and weight-residency behaviour of the processor model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cat/logpe.h"
#include "cat/logquant.h"
#include "hw/processor.h"
#include "snn/event_sim.h"
#include "snn/event_sim_reference.h"
#include "snn/network.h"
#include "snn/t2fsnn.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ttfs {
namespace {

Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng, float lo, float hi) {
  Tensor t{std::move(shape)};
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_f(lo, hi);
  return t;
}

TEST(EventSimStride, MatchesFastPathWithStride2AndNoPad) {
  // The event simulator's scatter must handle stride divisibility and padding
  // exactly like im2col. Build a net with a stride-2 pad-1 conv and a
  // stride-1 pad-0 conv.
  Rng rng{200};
  snn::SnnNetwork net{snn::Base2Kernel{24, 4.0, 1.0}};
  net.add_conv(random_tensor({4, 2, 3, 3}, rng, -0.15F, 0.25F),
               random_tensor({4}, rng, -0.05F, 0.1F), /*stride=*/2, /*pad=*/1);
  net.add_conv(random_tensor({6, 4, 3, 3}, rng, -0.1F, 0.15F),
               random_tensor({6}, rng, -0.05F, 0.1F), /*stride=*/1, /*pad=*/0);
  net.add_fc(random_tensor({3, 6 * 3 * 3}, rng, -0.1F, 0.12F),
             random_tensor({3}, rng, -0.05F, 0.05F));

  for (int trial = 0; trial < 3; ++trial) {
    Tensor img = random_tensor({2, 9, 9}, rng, 0.0F, 1.0F);
    const auto maps = net.trace(img);
    const snn::EventTrace events = snn::run_event_sim(net, img);
    ASSERT_EQ(events.layers.size(), maps.size());
    for (std::size_t l = 0; l < maps.size(); ++l) {
      std::vector<int> steps(static_cast<std::size_t>(maps[l].neuron_count()), snn::kNoSpike);
      for (const snn::Spike& s : events.layers[l].spikes) {
        steps[static_cast<std::size_t>(s.neuron)] = s.step;
      }
      EXPECT_EQ(steps, maps[l].steps) << "layer " << l << " trial " << trial;
    }
  }
}

// Asserts one trace is bit-identical to another: every spike in emission
// order, every per-layer counter, every logit.
void expect_traces_identical(const snn::EventTrace& got, const snn::EventTrace& want,
                             const char* what) {
  ASSERT_EQ(got.layers.size(), want.layers.size()) << what;
  for (std::size_t l = 0; l < want.layers.size(); ++l) {
    ASSERT_EQ(got.layers[l].spikes.size(), want.layers[l].spikes.size())
        << what << " layer " << l;
    for (std::size_t s = 0; s < want.layers[l].spikes.size(); ++s) {
      EXPECT_EQ(got.layers[l].spikes[s].neuron, want.layers[l].spikes[s].neuron)
          << what << " layer " << l << " spike " << s;
      EXPECT_EQ(got.layers[l].spikes[s].step, want.layers[l].spikes[s].step)
          << what << " layer " << l << " spike " << s;
    }
    EXPECT_EQ(got.layers[l].neuron_count, want.layers[l].neuron_count) << what << " layer " << l;
    EXPECT_EQ(got.layers[l].integration_ops, want.layers[l].integration_ops)
        << what << " layer " << l;
    EXPECT_EQ(got.layers[l].encoder_cycles, want.layers[l].encoder_cycles)
        << what << " layer " << l;
  }
  ASSERT_EQ(got.logits.numel(), want.logits.numel()) << what;
  for (std::int64_t i = 0; i < want.logits.numel(); ++i) {
    EXPECT_EQ(got.logits[i], want.logits[i]) << what << " logit " << i;
  }
}

TEST(EventSimOverhaul, BitIdenticalToReferenceSimulator) {
  // The repacked-weight / step-bucketed / arena-reusing simulator must
  // reproduce the retained pre-overhaul implementation exactly — spike maps,
  // emission order, integration-op counts, encoder-cycle counts and logits —
  // across conv stride/pad variants, pooling, and FC layers.
  Rng rng{400};
  snn::SnnNetwork net{snn::Base2Kernel{24, 4.0, 1.0}};
  net.add_conv(random_tensor({6, 3, 3, 3}, rng, -0.15F, 0.25F),
               random_tensor({6}, rng, -0.05F, 0.1F), /*stride=*/1, /*pad=*/1);
  net.add_pool(2, 2);
  net.add_conv(random_tensor({8, 6, 3, 3}, rng, -0.1F, 0.15F), Tensor{{8}},
               /*stride=*/2, /*pad=*/1);
  net.add_conv(random_tensor({10, 8, 3, 3}, rng, -0.1F, 0.15F),
               random_tensor({10}, rng, -0.05F, 0.1F), /*stride=*/1, /*pad=*/0);
  net.add_fc(random_tensor({5, 10 * 1 * 1}, rng, -0.2F, 0.22F),
             random_tensor({5}, rng, -0.05F, 0.05F));

  snn::SimArena arena;  // shared across trials: reuse must not leak state
  for (int trial = 0; trial < 4; ++trial) {
    const Tensor img = random_tensor({3, 12, 12}, rng, 0.0F, 1.0F);
    const snn::EventTrace ref = snn::reference::run_event_sim(net, img);
    expect_traces_identical(snn::run_event_sim(net, img), ref, "fresh-arena");
    expect_traces_identical(snn::run_event_sim(net, img, arena), ref, "shared-arena");
  }
}

TEST(EventSimOverhaul, BatchBitIdenticalToReference) {
  Rng rng{401};
  snn::SnnNetwork net{snn::Base2Kernel{24, 4.0, 1.0}};
  net.add_conv(random_tensor({6, 3, 3, 3}, rng, -0.15F, 0.25F),
               random_tensor({6}, rng, -0.05F, 0.1F), 1, 1);
  net.add_pool(2, 2);
  net.add_fc(random_tensor({5, 6 * 5 * 5}, rng, -0.1F, 0.12F),
             random_tensor({5}, rng, -0.05F, 0.05F));
  const Tensor images = random_tensor({7, 3, 10, 10}, rng, 0.0F, 1.0F);

  ThreadPool pool{3};
  const snn::BatchEventResult batched = snn::run_event_sim_batch(net, images, &pool);
  ASSERT_EQ(batched.traces.size(), 7U);
  for (std::int64_t i = 0; i < images.dim(0); ++i) {
    const snn::EventTrace ref = snn::reference::run_event_sim(net, images.sample0(i));
    expect_traces_identical(batched.traces[static_cast<std::size_t>(i)], ref, "batch sample");
  }
}

TEST(T2fsnnAligned, MatchesBase2NetworkWhenKernelsAligned) {
  // With tau_e = tau_2 / ln 2 and td = 0, the base-e kernel codes the exact
  // same grid as the base-2 kernel (Sec. 3.1: "using the new kernel does not
  // directly affect classification accuracy"). Both networks must then
  // produce identical logits on identical layers.
  Rng rng{201};
  std::vector<snn::SnnLayer> layers;
  layers.push_back(snn::SnnConv{random_tensor({4, 1, 3, 3}, rng, -0.2F, 0.3F),
                                random_tensor({4}, rng, -0.05F, 0.1F), 1, 1});
  layers.push_back(snn::SnnPool{2, 2});
  layers.push_back(snn::SnnFc{random_tensor({5, 4 * 4 * 4}, rng, -0.1F, 0.12F),
                              random_tensor({5}, rng, -0.05F, 0.05F)});
  auto layers_copy = layers;

  const int window = 24;
  const double tau2 = 4.0;
  snn::SnnNetwork base2{snn::Base2Kernel{window, tau2, 1.0}, std::move(layers)};

  snn::T2fsnnConfig cfg;
  cfg.window = window;
  cfg.tau = tau2 / std::log(2.0);
  cfg.td = 0.0;
  snn::T2fsnnNetwork basee{cfg, std::move(layers_copy)};

  Tensor x = random_tensor({4, 1, 8, 8}, rng, 0.0F, 1.0F);
  const Tensor la = base2.forward(x);
  const Tensor lb = basee.forward(x);
  ASSERT_EQ(la.shape(), lb.shape());
  for (std::int64_t i = 0; i < la.numel(); ++i) {
    EXPECT_NEAR(la[i], lb[i], 1e-4F) << "logit " << i;
  }
}

TEST(LogPeQuantized, QuantizedWeightTimesLevelIsExactInCodes) {
  // Every log-quantized weight is sign * 2^(q * 2^-z); feeding (sign, q) into
  // the LogPe must reproduce w_q * kappa(step) to LUT precision — i.e. the
  // quantizer emits exactly what the hardware datapath consumes.
  cat::LogQuantConfig qc;
  qc.bits = 5;
  qc.z = 1;
  cat::LogPeConfig pc;
  pc.p = 2;  // tau = 4
  pc.z = qc.z;
  cat::LogPe pe{pc};
  const snn::Base2Kernel kernel{24, 4.0, 1.0};

  Rng rng{202};
  for (int trial = 0; trial < 500; ++trial) {
    const double w = rng.uniform(-1.0, 1.0);
    const double wq = cat::log_quantize_value(w, 1.0, qc);
    if (wq == 0.0) continue;
    // Recover the code from the quantized magnitude.
    const int q = static_cast<int>(std::lround(std::log2(std::fabs(wq)) / qc.step()));
    const int sign = wq < 0.0 ? -1 : 1;
    const int step = static_cast<int>(rng.uniform_int(0, kernel.window() - 1));

    pe.reset();
    pe.accumulate(sign, q, step);
    const double expect = wq * kernel.level(step);
    // Error bound: LUT rounding (relative) + one accumulator LSB (absolute).
    const double acc_lsb = std::exp2(-pc.acc_frac_bits);
    EXPECT_NEAR(pe.membrane(), expect, std::fabs(expect) * 1e-3 + acc_lsb)
        << "w=" << w << " q=" << q << " step=" << step;
  }
}

TEST(ProcessorResidency, SmallNetworkKeepsWeightsOnChip) {
  // A network whose 5-bit weights fit in the 4x90 KB buffers must not charge
  // per-image DRAM weight streaming.
  hw::NetworkWorkload small;
  small.name = "small";
  hw::LayerWorkload conv;
  conv.kind = hw::LayerKind::kConv;
  conv.name = "conv";
  conv.cin = 8;
  conv.hin = conv.win = 16;
  conv.cout = 16;
  conv.hout = conv.wout = 16;
  conv.kernel = 3;
  hw::LayerWorkload fc;
  fc.kind = hw::LayerKind::kFc;
  fc.name = "fc";
  fc.cin = 16 * 16 * 16;
  fc.cout = 10;
  fc.hin = fc.win = fc.hout = fc.wout = 1;
  small.layers = {conv, fc};
  small.activity = hw::default_activity(2);

  const hw::SnnProcessorModel model{hw::ArchConfig{}, hw::default_tech()};
  ASSERT_LT(static_cast<double>(small.total_weights()) * 5, 4.0 * 90 * 1024 * 8);
  const auto report = model.run(small);
  // DRAM traffic = spikes only; far below one weight stream.
  const double weight_bits = static_cast<double>(small.total_weights()) * 5;
  double dram_bits = 0.0;
  for (const auto& l : report.layers) dram_bits += l.dram_bits;
  EXPECT_LT(dram_bits, weight_bits);
}

TEST(ProcessorResidency, Vgg16StreamsWeights) {
  const auto w = hw::vgg16_workload("cifar", 32, 10);
  const hw::SnnProcessorModel model{hw::ArchConfig{}, hw::default_tech()};
  const auto report = model.run(w);
  double dram_bits = 0.0;
  for (const auto& l : report.layers) dram_bits += l.dram_bits;
  EXPECT_GT(dram_bits, static_cast<double>(w.total_weights()) * 5 * 0.99);
}

TEST(EventSimEnergyHooks, IntegrationOpsMatchDenseTimesActivity) {
  // integration_ops counted by the event sim ~= dense MACs scaled by the
  // firing fraction of the source layer (interior-approximation sanity).
  Rng rng{203};
  snn::SnnNetwork net{snn::Base2Kernel{24, 4.0, 1.0}};
  net.add_conv(random_tensor({8, 3, 3, 3}, rng, -0.1F, 0.2F), Tensor{{8}}, 1, 1);
  net.add_fc(random_tensor({4, 8 * 10 * 10}, rng, -0.05F, 0.06F), Tensor{{4}});
  Tensor img = random_tensor({3, 10, 10}, rng, 0.3F, 1.0F);  // all pixels spike

  const snn::EventTrace trace = snn::run_event_sim(net, img);
  // Layer 1 (conv): every input spikes, so ops ~= dense interior MACs.
  const std::int64_t dense = 8LL * 3 * 3 * 3 * 10 * 10;
  EXPECT_GT(trace.layers[1].integration_ops, dense * 7 / 10);  // border effects
  EXPECT_LE(trace.layers[1].integration_ops, dense);
}

// A conv/pool/fc stack plus a batch of images for the batching equivalence
// tests below.
snn::SnnNetwork batching_net(Rng& rng) {
  snn::SnnNetwork net{snn::Base2Kernel{24, 4.0, 1.0}};
  net.add_conv(random_tensor({6, 3, 3, 3}, rng, -0.15F, 0.25F),
               random_tensor({6}, rng, -0.05F, 0.1F), /*stride=*/1, /*pad=*/1);
  net.add_pool(2, 2);
  net.add_conv(random_tensor({8, 6, 3, 3}, rng, -0.1F, 0.15F),
               random_tensor({8}, rng, -0.05F, 0.1F), /*stride=*/2, /*pad=*/1);
  net.add_fc(random_tensor({5, 8 * 3 * 3}, rng, -0.1F, 0.12F),
             random_tensor({5}, rng, -0.05F, 0.05F));
  return net;
}

TEST(BatchEventSim, MatchesSequentialLoopBitExactly) {
  // run_event_sim_batch must reproduce the per-sample run_event_sim loop
  // exactly: every spike (neuron, step, emission order), every op/cycle
  // counter and every logit — the activity accounting that feeds the hardware
  // model may not drift when inference is fanned out across workers.
  Rng rng{300};
  const snn::SnnNetwork net = batching_net(rng);
  const Tensor images = random_tensor({6, 3, 10, 10}, rng, 0.0F, 1.0F);

  std::vector<snn::EventTrace> seq;
  for (std::int64_t i = 0; i < images.dim(0); ++i) {
    seq.push_back(snn::run_event_sim(net, images.sample0(i)));
  }

  // Exercise a real fan-out (3 workers) and the inline path (0 workers).
  for (const unsigned workers : {3U, 0U}) {
    ThreadPool pool{workers};
    const snn::BatchEventResult batched = snn::run_event_sim_batch(net, images, &pool);
    ASSERT_EQ(batched.traces.size(), seq.size()) << "workers " << workers;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const snn::EventTrace& a = batched.traces[i];
      const snn::EventTrace& b = seq[i];
      ASSERT_EQ(a.layers.size(), b.layers.size()) << "sample " << i;
      for (std::size_t l = 0; l < b.layers.size(); ++l) {
        ASSERT_EQ(a.layers[l].spikes.size(), b.layers[l].spikes.size())
            << "sample " << i << " layer " << l;
        for (std::size_t s = 0; s < b.layers[l].spikes.size(); ++s) {
          EXPECT_EQ(a.layers[l].spikes[s].neuron, b.layers[l].spikes[s].neuron);
          EXPECT_EQ(a.layers[l].spikes[s].step, b.layers[l].spikes[s].step);
        }
        EXPECT_EQ(a.layers[l].neuron_count, b.layers[l].neuron_count);
        EXPECT_EQ(a.layers[l].integration_ops, b.layers[l].integration_ops);
        EXPECT_EQ(a.layers[l].encoder_cycles, b.layers[l].encoder_cycles);
      }
      ASSERT_EQ(a.logits.numel(), b.logits.numel());
      for (std::int64_t j = 0; j < b.logits.numel(); ++j) {
        EXPECT_EQ(a.logits[j], b.logits[j]) << "sample " << i << " logit " << j;
      }
      // Batch logits row i is sample i's logits verbatim.
      for (std::int64_t j = 0; j < b.logits.numel(); ++j) {
        EXPECT_EQ(batched.logits.at(static_cast<std::int64_t>(i), j), b.logits[j]);
      }
    }
    // Aggregates merge in sample order — identical to summing the loop.
    std::int64_t seq_spikes = 0, seq_ops = 0;
    for (const auto& t : seq) {
      seq_spikes += t.total_spikes();
      seq_ops += t.total_integration_ops();
    }
    EXPECT_EQ(batched.total_spikes(), seq_spikes);
    EXPECT_EQ(batched.total_integration_ops(), seq_ops);
  }
}

TEST(BatchClassify, MatchesPerSampleForwardBitExactly) {
  Rng rng{301};
  const snn::SnnNetwork net = batching_net(rng);
  const Tensor images = random_tensor({5, 3, 10, 10}, rng, 0.0F, 1.0F);

  // Sequential reference: forward() on each (1, C, H, W) slice.
  std::vector<Tensor> seq_rows;
  snn::SnnRunStats seq_stats;
  for (std::int64_t i = 0; i < images.dim(0); ++i) {
    const Tensor one = images.sample0(i).reshaped({1, 3, 10, 10});
    seq_rows.push_back(net.forward(one, &seq_stats));
  }

  ThreadPool pool{2};
  snn::SnnRunStats batch_stats;
  const Tensor logits = net.classify(images, &batch_stats, &pool);
  ASSERT_EQ(logits.dim(0), images.dim(0));
  for (std::int64_t i = 0; i < images.dim(0); ++i) {
    ASSERT_EQ(seq_rows[static_cast<std::size_t>(i)].numel(), logits.dim(1));
    for (std::int64_t j = 0; j < logits.dim(1); ++j) {
      EXPECT_EQ(logits.at(i, j), seq_rows[static_cast<std::size_t>(i)][j])
          << "sample " << i << " logit " << j;
    }
  }
  EXPECT_EQ(batch_stats.images, seq_stats.images);
  EXPECT_EQ(batch_stats.spikes_per_layer, seq_stats.spikes_per_layer);
  EXPECT_EQ(batch_stats.neurons_per_layer, seq_stats.neurons_per_layer);
}

TEST(BatchTrace, MatchesPerSampleTrace) {
  Rng rng{302};
  const snn::SnnNetwork net = batching_net(rng);
  const Tensor images = random_tensor({4, 3, 10, 10}, rng, 0.0F, 1.0F);

  ThreadPool pool{2};
  const auto batched = net.trace_batch(images, &pool);
  ASSERT_EQ(batched.size(), static_cast<std::size_t>(images.dim(0)));
  for (std::int64_t i = 0; i < images.dim(0); ++i) {
    const auto maps = net.trace(images.sample0(i));
    const auto& got = batched[static_cast<std::size_t>(i)];
    ASSERT_EQ(got.size(), maps.size()) << "sample " << i;
    for (std::size_t l = 0; l < maps.size(); ++l) {
      EXPECT_EQ(got[l].shape, maps[l].shape) << "sample " << i << " layer " << l;
      EXPECT_EQ(got[l].steps, maps[l].steps) << "sample " << i << " layer " << l;
    }
  }
}

}  // namespace
}  // namespace ttfs
