#include <gtest/gtest.h>

#include "cat/conversion.h"
#include "cat/schedule.h"
#include "data/synthetic.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/functional.h"
#include "nn/vgg.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace ttfs::cat {
namespace {

data::LabeledData tiny_data(int classes, int image, std::int64_t count) {
  data::SyntheticSpec spec = data::syn_cifar10_spec();
  spec.classes = classes;
  spec.image = image;
  return data::generate_synthetic(spec, count, 0);
}

TEST(BnFusion, FusedConvMatchesConvPlusBn) {
  Rng rng{70};
  nn::Model m;
  m.add<nn::Conv2d>(2, 3, 3, 1, 1, /*bias=*/false, rng);
  auto& bn = m.add<nn::BatchNorm2d>(3);

  // Put BN into a non-trivial state.
  Tensor x{{4, 2, 5, 5}};
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform_f(-1.0F, 1.0F);
  for (int i = 0; i < 10; ++i) (void)m.forward(x, /*train=*/true);
  for (std::int64_t c = 0; c < 3; ++c) {
    bn.gamma().value[c] = rng.uniform_f(0.5F, 1.5F);
    bn.beta().value[c] = rng.uniform_f(-0.3F, 0.3F);
  }

  const Tensor reference = m.forward(x, /*train=*/false);
  const auto layers = extract_fused_layers(m);
  ASSERT_EQ(layers.size(), 1U);
  const auto* conv = std::get_if<snn::SnnConv>(&layers[0]);
  ASSERT_NE(conv, nullptr);
  const Tensor fused = nn::conv2d_forward(x, conv->weight, &conv->bias, 1, 1);
  EXPECT_TRUE(fused.allclose(reference, 1e-4F));
}

TEST(Extraction, StructureOfVgg) {
  Rng rng{71};
  nn::Model m = nn::build_vgg(nn::vgg_micro_spec(4), 3, 8, rng);
  const auto layers = extract_fused_layers(m);
  // vgg_micro: conv, pool, conv, pool, fc, fc-classifier.
  ASSERT_EQ(layers.size(), 6U);
  EXPECT_TRUE(std::holds_alternative<snn::SnnConv>(layers[0]));
  EXPECT_TRUE(std::holds_alternative<snn::SnnPool>(layers[1]));
  EXPECT_TRUE(std::holds_alternative<snn::SnnConv>(layers[2]));
  EXPECT_TRUE(std::holds_alternative<snn::SnnPool>(layers[3]));
  EXPECT_TRUE(std::holds_alternative<snn::SnnFc>(layers[4]));
  EXPECT_TRUE(std::holds_alternative<snn::SnnFc>(layers[5]));
}

TEST(OutputNorm, ScalesLastWeightedLayerOnly) {
  Rng rng{72};
  nn::Model m = nn::build_vgg(nn::vgg_micro_spec(4), 3, 8, rng);
  auto layers = extract_fused_layers(m);
  const auto* last_before = std::get_if<snn::SnnFc>(&layers.back());
  const float w0 = last_before->weight[0];
  const auto* first_before = std::get_if<snn::SnnConv>(&layers.front());
  const float c0 = first_before->weight[0];

  normalize_output_layer(layers, 4.0);
  EXPECT_FLOAT_EQ(std::get_if<snn::SnnFc>(&layers.back())->weight[0], w0 / 4.0F);
  EXPECT_FLOAT_EQ(std::get_if<snn::SnnConv>(&layers.front())->weight[0], c0);
}

TEST(OutputNorm, RejectsBadScale) {
  Rng rng{73};
  nn::Model m = nn::build_vgg(nn::vgg_micro_spec(4), 3, 8, rng);
  auto layers = extract_fused_layers(m);
  EXPECT_THROW(normalize_output_layer(layers, 0.0), std::invalid_argument);
}

TEST(OutputNorm, PreservesArgmax) {
  Rng rng{74};
  nn::Model m = nn::build_vgg(nn::vgg_micro_spec(4), 3, 8, rng);
  const auto data = tiny_data(4, 8, 16);
  const snn::Base2Kernel kernel{24, 4.0, 1.0};

  auto layers_a = extract_fused_layers(m);
  snn::SnnNetwork net_a{kernel, std::move(layers_a)};
  const Tensor la = net_a.forward(data.images);

  snn::SnnNetwork net_b = convert_to_snn(m, kernel, data);  // includes normalization
  const Tensor lb = net_b.forward(data.images);
  for (std::int64_t i = 0; i < la.dim(0); ++i) {
    EXPECT_EQ(argmax_row(la, i), argmax_row(lb, i)) << "sample " << i;
  }
}

TEST(WeightNormRelu, BoundsHiddenActivations) {
  Rng rng{75};
  // A ReLU net with deliberately large weights overflows [0, 1] before
  // normalization and fits after.
  std::vector<snn::SnnLayer> layers;
  Tensor w1{{3, 1, 3, 3}};
  for (std::int64_t i = 0; i < w1.numel(); ++i) w1[i] = rng.uniform_f(-1.0F, 3.0F);
  layers.push_back(snn::SnnConv{std::move(w1), Tensor{{3}}, 1, 1});
  Tensor w2{{2, 3 * 8 * 8}};
  for (std::int64_t i = 0; i < w2.numel(); ++i) w2[i] = rng.uniform_f(-0.5F, 0.8F);
  layers.push_back(snn::SnnFc{std::move(w2), Tensor{{2}}});

  Tensor calib{{4, 1, 8, 8}};
  for (std::int64_t i = 0; i < calib.numel(); ++i) calib[i] = rng.uniform_f(0.0F, 1.0F);

  weight_normalize_relu(layers, calib, 1.0);

  // Re-run: first-layer activations must now fit within [., 1].
  const auto* conv = std::get_if<snn::SnnConv>(&layers[0]);
  const Tensor h = nn::conv2d_forward(calib, conv->weight, &conv->bias, 1, 1);
  float mx = 0.0F;
  for (std::int64_t i = 0; i < h.numel(); ++i) mx = std::max(mx, h[i]);
  EXPECT_LE(mx, 1.0F + 1e-3F);
  EXPECT_GT(mx, 0.5F);  // normalization targets the max, so it lands near 1
}

TEST(WeightNormRelu, PreservesReluNetworkArgmax) {
  Rng rng{76};
  nn::Model m = nn::build_vgg(nn::vgg_micro_spec(3), 3, 8, rng);
  const auto data = tiny_data(3, 8, 12);

  auto layers = extract_fused_layers(m);
  // ReLU reference forward before normalization.
  const auto relu_forward = [](const std::vector<snn::SnnLayer>& ls, const Tensor& images) {
    Tensor x = images;
    std::size_t weighted = 0, total = 0;
    for (const auto& l : ls) {
      if (!std::holds_alternative<snn::SnnPool>(l)) ++total;
    }
    for (const auto& l : ls) {
      if (const auto* conv = std::get_if<snn::SnnConv>(&l)) {
        x = nn::conv2d_forward(x, conv->weight, &conv->bias, conv->stride, conv->pad);
        ++weighted;
      } else if (const auto* fc = std::get_if<snn::SnnFc>(&l)) {
        if (x.rank() != 2) x = x.reshaped({x.dim(0), x.numel() / x.dim(0)});
        x = nn::linear_forward(x, fc->weight, &fc->bias);
        ++weighted;
      } else {
        const auto& p = std::get<snn::SnnPool>(l);
        x = nn::maxpool_forward(x, p.kernel, p.stride);
        continue;
      }
      if (weighted < total) {
        for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = std::max(0.0F, x[i]);
      }
    }
    return x;
  };

  const Tensor before = relu_forward(layers, data.images);
  weight_normalize_relu(layers, data.images, 1.0);
  const Tensor after = relu_forward(layers, data.images);
  for (std::int64_t i = 0; i < before.dim(0); ++i) {
    EXPECT_EQ(argmax_row(before, i), argmax_row(after, i)) << "sample " << i;
  }
}

TEST(Conversion, MaxAbsLogitPositive) {
  Rng rng{77};
  nn::Model m = nn::build_vgg(nn::vgg_micro_spec(4), 3, 8, rng);
  const auto data = tiny_data(4, 8, 8);
  EXPECT_GT(max_abs_logit(m, data), 0.0);
}

}  // namespace
}  // namespace ttfs::cat
