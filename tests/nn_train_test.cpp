// End-to-end training sanity: the framework must actually learn.
#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/metrics.h"
#include "nn/model.h"
#include "nn/sgd.h"
#include "nn/vgg.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace ttfs {
namespace {

TEST(Training, LearnsLinearlySeparableToy) {
  // Two Gaussian blobs in 2-D, logistic-style separation via a 1-layer net.
  Rng rng{21};
  const std::int64_t n = 200;
  Tensor x{{n, 2}};
  std::vector<std::int32_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    labels[static_cast<std::size_t>(i)] = cls;
    const float cx = cls == 0 ? -1.0F : 1.0F;
    x.at(i, 0) = cx + rng.normal_f(0.0F, 0.4F);
    x.at(i, 1) = -cx + rng.normal_f(0.0F, 0.4F);
  }

  nn::Model m;
  m.add<nn::Linear>(2, 2, true, rng);
  nn::Sgd sgd{{0.1F, 0.9F, 0.0F}};
  for (int step = 0; step < 100; ++step) {
    m.zero_grad();
    const Tensor logits = m.forward(x, true);
    const auto loss = nn::softmax_cross_entropy(logits, labels);
    m.backward(loss.grad_logits);
    sgd.step(m.params());
  }
  const Tensor logits = m.forward(x, false);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (argmax_row(logits, i) == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  EXPECT_GT(correct, n * 95 / 100);
}

TEST(Training, VggMicroLearnsSynthetic) {
  // A few epochs on an easy 4-class synthetic set must beat chance clearly.
  data::SyntheticSpec spec = data::syn_cifar10_spec();
  spec.classes = 4;
  spec.image = 8;
  spec.noise = 0.05;
  const auto train = data::generate_synthetic(spec, 256, 0);
  const auto test = data::generate_synthetic(spec, 128, 1);

  Rng rng{22};
  nn::Model m = nn::build_vgg(nn::vgg_micro_spec(4), 3, 8, rng);
  nn::Sgd sgd{{0.05F, 0.9F, 5e-4F}};
  Rng shuffle{23};
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (auto& batch : data::make_batches(train, 32, &shuffle)) {
      m.zero_grad();
      const Tensor logits = m.forward(batch.images, true);
      const auto loss = nn::softmax_cross_entropy(logits, batch.labels);
      m.backward(loss.grad_logits);
      sgd.step(m.params());
    }
  }
  const double acc = nn::evaluate_accuracy(m, data::make_batches(test, 64, nullptr));
  EXPECT_GT(acc, 60.0) << "vgg-micro failed to learn an easy synthetic task";
}

TEST(Metrics, EvaluateAccuracyFn) {
  // A classifier that always answers 0 scores exactly the label-0 share.
  data::LabeledData d;
  d.classes = 2;
  d.images = Tensor{{4, 1, 2, 2}};
  d.labels = {0, 1, 0, 1};
  const auto batches = data::make_batches(d, 2, nullptr);
  const double acc = nn::evaluate_accuracy_fn(
      [](const Tensor& images) {
        Tensor logits{{images.dim(0), 2}};
        for (std::int64_t i = 0; i < images.dim(0); ++i) logits.at(i, 0) = 1.0F;
        return logits;
      },
      batches);
  EXPECT_DOUBLE_EQ(acc, 50.0);
}

}  // namespace
}  // namespace ttfs
