// Parameterized end-to-end property: for ANY kernel configuration (T, tau,
// theta0) and a randomly initialized model, the converted SNN's predictions
// equal the ANN's predictions under phi_TTFS evaluation — the CAT guarantee
// the whole paper rests on, checked across the configuration space rather
// than at the paper's operating points only.
#include <gtest/gtest.h>

#include <tuple>

#include "cat/activations.h"
#include "cat/conversion.h"
#include "cat/schedule.h"
#include "data/synthetic.h"
#include "nn/vgg.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace ttfs::cat {
namespace {

class ConversionSweep
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};  // T, tau, theta0

TEST_P(ConversionSweep, SnnPredictionsMatchTtfsAnn) {
  const auto [window, tau, theta0] = GetParam();
  const snn::Base2Kernel kernel{window, tau, theta0};

  data::SyntheticSpec spec = data::syn_cifar10_spec();
  spec.classes = 4;
  spec.image = 10;
  const auto data = data::generate_synthetic(spec, 32, 0);

  // Random (untrained) model — the equivalence is structural, independent of
  // training. Put it into the full-CAT end state so every activation site
  // runs phi_TTFS (BN stays at its random-ish running stats).
  Rng rng{static_cast<std::uint64_t>(window * 131 + static_cast<int>(tau * 8))};
  nn::Model model = nn::build_vgg(nn::vgg_micro_spec(4), 3, 10, rng);
  // Prime BN running stats so eval-mode forward is deterministic and sane.
  for (int i = 0; i < 3; ++i) (void)model.forward(data.images, /*train=*/true);

  CatSchedule schedule;
  schedule.mode = CatMode::kFull;
  schedule.ttfs_epoch = 0;
  schedule.relu_epochs = 0;
  schedule.theta0 = theta0;
  apply_schedule(model, schedule, kernel, /*epoch=*/1);

  const Tensor ann_logits = model.forward(data.images, /*train=*/false);
  snn::SnnNetwork net = convert_to_snn(model, kernel, data);
  const Tensor snn_logits = net.forward(data.images);

  ASSERT_EQ(ann_logits.shape(), snn_logits.shape());
  int agree = 0;
  for (std::int64_t b = 0; b < ann_logits.dim(0); ++b) {
    if (argmax_row(ann_logits, b) == argmax_row(snn_logits, b)) ++agree;
  }
  // Logits differ by the output-layer normalization scale only; argmax must
  // match on every sample.
  EXPECT_EQ(agree, static_cast<int>(ann_logits.dim(0)))
      << "T=" << window << " tau=" << tau << " theta0=" << theta0;
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ConversionSweep,
    ::testing::Values(std::make_tuple(12, 2.0, 1.0), std::make_tuple(24, 4.0, 1.0),
                      std::make_tuple(48, 8.0, 1.0), std::make_tuple(16, 4.0, 1.0),
                      std::make_tuple(32, 8.0, 2.0), std::make_tuple(8, 1.0, 1.0),
                      std::make_tuple(64, 16.0, 0.5)));

class LatencySweep : public ::testing::TestWithParam<int> {};

TEST_P(LatencySweep, LatencyFormulaHolds) {
  const int window = GetParam();
  Rng rng{5};
  nn::Model model = nn::build_vgg(nn::vgg_micro_spec(3), 1, 8, rng);
  data::SyntheticSpec spec = data::syn_cifar10_spec();
  spec.classes = 3;
  spec.image = 8;
  spec.channels = 1;
  const auto data = data::generate_synthetic(spec, 8, 0);
  snn::SnnNetwork net = convert_to_snn(model, snn::Base2Kernel{window, 4.0, 1.0}, data);
  // vgg_micro: 2 conv + 2 fc = 4 weighted layers -> (1 + 4) * T.
  EXPECT_EQ(net.latency_timesteps(), 5 * window);
}

INSTANTIATE_TEST_SUITE_P(Windows, LatencySweep, ::testing::Values(8, 12, 24, 48, 80));

}  // namespace
}  // namespace ttfs::cat
