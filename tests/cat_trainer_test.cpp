#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cat/trainer.h"
#include "data/augment.h"
#include "data/synthetic.h"
#include "nn/vgg.h"
#include "util/rng.h"

namespace ttfs::cat {
namespace {

TEST(TrainConfig, PaperFullMatchesSec31) {
  const TrainConfig c = TrainConfig::paper_full();
  EXPECT_EQ(c.epochs, 200);
  EXPECT_FLOAT_EQ(c.base_lr, 0.1F);
  EXPECT_EQ(c.lr_milestones, (std::vector<int>{80, 120, 160}));
  EXPECT_EQ(c.schedule.relu_epochs, 10);
  EXPECT_EQ(c.schedule.ttfs_epoch, 170);
  EXPECT_FLOAT_EQ(c.momentum, 0.9F);
  EXPECT_FLOAT_EQ(c.weight_decay, 5e-4F);
}

TEST(TrainConfig, CompressedPreservesProportions) {
  const TrainConfig c = TrainConfig::compressed(40);
  EXPECT_EQ(c.epochs, 40);
  EXPECT_EQ(c.lr_milestones, (std::vector<int>{16, 24, 32}));  // 40/60/80%
  EXPECT_EQ(c.schedule.relu_epochs, 2);                         // 5%
  EXPECT_EQ(c.schedule.ttfs_epoch, 34);                         // 85%
  EXPECT_THROW(TrainConfig::compressed(2), std::invalid_argument);
}

TEST(TrainConfig, KernelReflectsParams) {
  TrainConfig c;
  c.window = 48;
  c.tau = 8.0;
  const snn::Base2Kernel k = c.kernel();
  EXPECT_EQ(k.window(), 48);
  EXPECT_DOUBLE_EQ(k.tau(), 8.0);
}

TEST(Trainer, RecordsHistoryAndSchedule) {
  data::SyntheticSpec spec = data::syn_cifar10_spec();
  spec.classes = 3;
  spec.image = 8;
  spec.noise = 0.05;
  const auto train = data::generate_synthetic(spec, 120, 0);
  const auto test = data::generate_synthetic(spec, 60, 1);

  TrainConfig cfg = TrainConfig::compressed(6);
  cfg.verbose = false;
  cfg.schedule.relu_epochs = 2;
  cfg.schedule.ttfs_epoch = 4;
  Rng rng{1};
  nn::Model model = nn::build_vgg(nn::vgg_micro_spec(3), 3, 8, rng);
  const TrainHistory h = train_cat(model, train, test, cfg);

  ASSERT_EQ(h.epochs.size(), 6U);
  EXPECT_EQ(h.epochs[0].hidden_activation, "relu");
  EXPECT_EQ(h.epochs[2].hidden_activation, "clip");
  EXPECT_EQ(h.epochs[5].hidden_activation, "ttfs");
  EXPECT_FALSE(h.diverged);
  EXPECT_GE(h.final_test_acc, 100.0 / 3.0);  // at least chance-ish after 6 epochs
  for (const auto& e : h.epochs) {
    EXPECT_GE(e.train_acc, 0.0);
    EXPECT_LE(e.train_acc, 100.0);
  }
  // LR follows the milestone schedule.
  EXPECT_GT(h.epochs.front().lr, h.epochs.back().lr);
}

TEST(Trainer, AugmentFlagRuns) {
  data::SyntheticSpec spec = data::syn_cifar10_spec();
  spec.classes = 3;
  spec.image = 8;
  const auto train = data::generate_synthetic(spec, 60, 0);
  const auto test = data::generate_synthetic(spec, 30, 1);
  TrainConfig cfg = TrainConfig::compressed(5);
  cfg.verbose = false;
  cfg.augment = true;
  Rng rng{2};
  nn::Model model = nn::build_vgg(nn::vgg_micro_spec(3), 3, 8, rng);
  const TrainHistory h = train_cat(model, train, test, cfg);
  EXPECT_EQ(h.epochs.size(), 5U);
}

TEST(Trainer, WeightQatKeepsMastersFullPrecision) {
  // After QAT training the model must hold fp32 master weights (quantization
  // is applied per forward pass, not destructively).
  data::SyntheticSpec spec = data::syn_cifar10_spec();
  spec.classes = 3;
  spec.image = 8;
  const auto train = data::generate_synthetic(spec, 90, 0);
  const auto test = data::generate_synthetic(spec, 30, 1);
  TrainConfig cfg = TrainConfig::compressed(5);
  cfg.verbose = false;
  cfg.weight_qat = true;
  cfg.qat_bits = 4;
  cfg.qat_z = 1;
  Rng rng{6};
  nn::Model model = nn::build_vgg(nn::vgg_micro_spec(3), 3, 8, rng);
  (void)train_cat(model, train, test, cfg);

  // If weights had been destructively quantized, every weight magnitude would
  // sit exactly on the sqrt(2) grid; fp32 masters after SGD steps do not.
  int off_grid = 0;
  for (nn::Param* p : model.params()) {
    if (p->value.rank() < 2) continue;
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const double w = std::fabs(static_cast<double>(p->value[i]));
      if (w < 1e-9) continue;
      const double grid_pos = std::log2(w) / 0.5;
      if (std::fabs(grid_pos - std::round(grid_pos)) > 1e-4) ++off_grid;
    }
  }
  EXPECT_GT(off_grid, 0) << "masters look quantized in place";
}

TEST(Augment, FlipAndShiftPreserveValueSet) {
  Rng rng{3};
  nn::Batch batch;
  batch.images = Tensor{{1, 1, 4, 4}};
  for (std::int64_t i = 0; i < 16; ++i) batch.images[i] = static_cast<float>(i);
  batch.labels = {0};

  data::AugmentConfig cfg;
  cfg.horizontal_flip = true;
  cfg.max_shift = 0;
  // With shift disabled, a flip (if applied) must be a permutation.
  nn::Batch copy = batch;
  for (int attempt = 0; attempt < 16; ++attempt) {
    nn::Batch b = copy;
    data::augment_batch(b, cfg, rng);
    std::multiset<float> before(copy.images.vec().begin(), copy.images.vec().end());
    std::multiset<float> after(b.images.vec().begin(), b.images.vec().end());
    EXPECT_EQ(before, after);
  }
}

TEST(Augment, ShiftPadsWithZeros) {
  Rng rng{4};
  nn::Batch batch;
  batch.images = Tensor::full({1, 1, 6, 6}, 1.0F);
  batch.labels = {0};
  data::AugmentConfig cfg;
  cfg.horizontal_flip = false;
  cfg.max_shift = 2;
  bool saw_zero = false;
  for (int attempt = 0; attempt < 20 && !saw_zero; ++attempt) {
    nn::Batch b;
    b.images = Tensor::full({1, 1, 6, 6}, 1.0F);
    b.labels = {0};
    data::augment_batch(b, cfg, rng);
    for (std::int64_t i = 0; i < b.images.numel(); ++i) {
      if (b.images[i] == 0.0F) saw_zero = true;
    }
  }
  EXPECT_TRUE(saw_zero) << "shift never produced zero padding in 20 draws";
}

TEST(Augment, NoOpConfigLeavesImagesUntouched) {
  Rng rng{5};
  nn::Batch batch;
  batch.images = Tensor{{2, 1, 3, 3}};
  for (std::int64_t i = 0; i < batch.images.numel(); ++i) batch.images[i] = static_cast<float>(i);
  batch.labels = {0, 1};
  const Tensor before = batch.images;
  data::AugmentConfig cfg;
  cfg.horizontal_flip = false;
  cfg.max_shift = 0;
  data::augment_batch(batch, cfg, rng);
  EXPECT_TRUE(batch.images.allclose(before, 0.0F));
}

}  // namespace
}  // namespace ttfs::cat
