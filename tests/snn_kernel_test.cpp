#include <gtest/gtest.h>

#include <cmath>

#include "snn/kernel.h"
#include "util/rng.h"

namespace ttfs::snn {
namespace {

TEST(Base2Kernel, LevelValues) {
  const Base2Kernel k{24, 4.0, 1.0};
  EXPECT_DOUBLE_EQ(k.level(0), 1.0);
  EXPECT_DOUBLE_EQ(k.level(4), 0.5);
  EXPECT_DOUBLE_EQ(k.level(8), 0.25);
  EXPECT_NEAR(k.min_level(), static_cast<float>(std::exp2(-23.0 / 4.0)), 1e-12);
}

TEST(Base2Kernel, FireStepBoundaries) {
  const Base2Kernel k{24, 4.0, 1.0};
  EXPECT_EQ(k.fire_step(1.0), 0);      // at theta0: immediate fire
  EXPECT_EQ(k.fire_step(2.0), 0);      // saturated
  EXPECT_EQ(k.fire_step(0.5), 4);      // exact grid point round-trips
  EXPECT_EQ(k.fire_step(0.49), 5);     // just below -> next (later) step
  EXPECT_EQ(k.fire_step(0.0), kNoSpike);
  EXPECT_EQ(k.fire_step(-0.3), kNoSpike);
  EXPECT_EQ(k.fire_step(k.min_level()), k.window() - 1);
  EXPECT_EQ(k.fire_step(k.min_level() * 0.999), kNoSpike);
}

TEST(Base2Kernel, BadParamsThrow) {
  EXPECT_THROW((Base2Kernel{0, 4.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((Base2Kernel{24, 0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((Base2Kernel{24, 4.0, -1.0}), std::invalid_argument);
}

// Property: for every u, the fire step is the *first* step whose threshold is
// <= u — i.e. u >= level(k) and (k == 0 or u < level(k-1)).
class Base2Params : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(Base2Params, FireStepIsFirstCrossing) {
  const auto [window, tau] = GetParam();
  const Base2Kernel k{window, tau, 1.0};
  Rng rng{static_cast<std::uint64_t>(window * 31 + static_cast<int>(tau))};
  for (int trial = 0; trial < 3000; ++trial) {
    const double u = rng.uniform(-0.2, 1.5);
    const int step = k.fire_step(u);
    if (step == kNoSpike) {
      EXPECT_TRUE(u < k.min_level() || u <= 0.0) << "u=" << u;
    } else {
      EXPECT_GE(u, k.level(step)) << "u=" << u << " step=" << step;
      if (step > 0) {
        EXPECT_LT(u, k.level(step - 1)) << "u=" << u << " step=" << step;
      }
    }
  }
}

TEST_P(Base2Params, QuantizeIdempotentAndBelow) {
  const auto [window, tau] = GetParam();
  const Base2Kernel k{window, tau, 1.0};
  Rng rng{static_cast<std::uint64_t>(window * 91 + 7)};
  for (int trial = 0; trial < 3000; ++trial) {
    const double u = rng.uniform(0.0, 1.4);
    const double q = k.quantize(u);
    // Idempotent: quantized values are fixed points.
    EXPECT_DOUBLE_EQ(k.quantize(q), q);
    // Round-down (never overestimates in-range values).
    if (u < 1.0) {
      EXPECT_LE(q, u + 1e-12);
    }
    // Saturation.
    if (u >= 1.0) {
      EXPECT_DOUBLE_EQ(q, 1.0);
    }
  }
}

TEST_P(Base2Params, GridRoundTrip) {
  const auto [window, tau] = GetParam();
  const Base2Kernel k{window, tau, 1.0};
  for (int step = 0; step < window; ++step) {
    EXPECT_EQ(k.fire_step(k.level(step)), step) << "level " << step;
    EXPECT_DOUBLE_EQ(k.quantize(k.level(step)), k.level(step));
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, Base2Params,
                         ::testing::Values(std::make_pair(12, 2.0), std::make_pair(24, 4.0),
                                           std::make_pair(48, 8.0), std::make_pair(80, 20.0),
                                           std::make_pair(8, 1.0), std::make_pair(16, 4.0)));

TEST(Base2Kernel, NonUnitTheta0) {
  const Base2Kernel k{16, 4.0, 2.0};
  EXPECT_EQ(k.fire_step(2.0), 0);
  EXPECT_EQ(k.fire_step(1.0), 4);
  EXPECT_DOUBLE_EQ(k.quantize(3.0), 2.0);
}

TEST(Base2Kernel, LevelsVectorMatches) {
  const Base2Kernel k{8, 2.0, 1.0};
  const auto levels = k.levels();
  ASSERT_EQ(levels.size(), 8U);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(levels[static_cast<std::size_t>(i)], k.level(i));
}

TEST(BaseEKernel, MatchesBase2WhenAligned) {
  // kappa(t) = 2^(-t/tau2) equals eps(t) = e^(-t/taue) when taue = tau2/ln2.
  const Base2Kernel k2{24, 4.0, 1.0};
  const BaseEKernel ke{24, 4.0 / std::log(2.0), 0.0, 1.0};
  Rng rng{77};
  for (int trial = 0; trial < 2000; ++trial) {
    const double u = rng.uniform(0.0, 1.3);
    EXPECT_EQ(k2.fire_step(u), ke.fire_step(u)) << "u=" << u;
  }
}

TEST(BaseEKernel, DelayShiftsThreshold) {
  // td > 0 raises level(0) above theta0, letting values > theta0 be coded.
  const BaseEKernel k{80, 20.0, 10.0, 1.0};
  EXPECT_GT(k.level(0), 1.0);
  const int step = k.fire_step(1.2);
  EXPECT_NE(step, kNoSpike);
  EXPECT_GT(step, 0);
  EXPECT_LE(k.quantize(1.2), 1.2 + 1e-12);
}

TEST(BaseEKernel, FirstCrossingProperty) {
  const BaseEKernel k{40, 9.0, 5.0, 1.0};
  Rng rng{78};
  for (int trial = 0; trial < 3000; ++trial) {
    const double u = rng.uniform(-0.1, 2.0);
    const int step = k.fire_step(u);
    if (step == kNoSpike) {
      EXPECT_TRUE(u < k.min_level() || u <= 0.0);
    } else {
      EXPECT_GE(u, k.level(step));
      if (step > 0) {
        EXPECT_LT(u, k.level(step - 1));
      }
    }
  }
}

TEST(Base2Kernel, MonotoneQuantization) {
  // u1 <= u2 implies quantize(u1) <= quantize(u2).
  const Base2Kernel k{24, 4.0, 1.0};
  Rng rng{79};
  for (int trial = 0; trial < 2000; ++trial) {
    double a = rng.uniform(0.0, 1.2);
    double b = rng.uniform(0.0, 1.2);
    if (a > b) std::swap(a, b);
    EXPECT_LE(k.quantize(a), k.quantize(b) + 1e-12);
  }
}

}  // namespace
}  // namespace ttfs::snn
