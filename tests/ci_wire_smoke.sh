#!/usr/bin/env bash
# Loopback wire-serving smoke: start ttfs_wire_server, replay the committed
# Poisson trace (bench/traces/wire_smoke.json, 10k arrivals over 2 models)
# with ttfs_loadgen, and gate the resulting BENCH_wire_serving.json against
# the committed baseline in bench/baselines/wire/.
#
# The wire baseline lives in its own directory (not bench/baselines/) on
# purpose: tools/bench_compare.py treats a baseline with no current
# counterpart as a failure, and only this job produces wire numbers — the
# in-process perf-smoke job must not be asked to match them.
#
# What the gate holds firm vs loose here:
#   * "reqs/s" (relative band): in open loop, completed-requests/s tracks the
#     offered rate as long as the server keeps up, so it is robust across
#     runner speeds — a server that can no longer sustain the trace fails.
#   * "shed %" / "reject %" / "error %" (absolute percentage points): the
#     committed baseline is 0.0; a server that starts refusing at a load it
#     used to absorb fails even though relative-to-zero is undefined.
#   * "p95 ms" (relative band, widened to +200% via --latency-tolerance 2.0):
#     absolute tail latency varies with runner class far more than the
#     in-process benches, so it only catches order-of-magnitude regressions.
#
# Usage: tests/ci_wire_smoke.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
cd "${REPO_DIR}"

PORT_FILE="$(mktemp)"
SERVER_LOG="$(mktemp)"
trap 'kill "${SERVER_PID}" 2>/dev/null || true; rm -f "${PORT_FILE}"' EXIT

# Two models matching the trace's ids; bounded queue + reject admission so a
# hypothetical overload shows up as "reject %" in the gated table instead of
# freezing the IO thread (kBlock would).
"${BUILD_DIR}/tools/ttfs_wire_server" \
  --models 2 --replicas 2 --admission reject --queue-cap 512 \
  --port-file "${PORT_FILE}" >"${SERVER_LOG}" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -s "${PORT_FILE}" ] && break
  kill -0 "${SERVER_PID}" 2>/dev/null || { cat "${SERVER_LOG}"; exit 1; }
  sleep 0.1
done
PORT="$(cat "${PORT_FILE}")"
echo "wire server up on port ${PORT} (pid ${SERVER_PID})"

"${BUILD_DIR}/tools/ttfs_loadgen" \
  --port "${PORT}" --mode replay --trace bench/traces/wire_smoke.json \
  --connections 8 --max-seconds 120 --json

kill -TERM "${SERVER_PID}"
wait "${SERVER_PID}"
cat "${SERVER_LOG}"

python3 tools/bench_compare.py \
  --baseline bench/baselines/wire --current . --latency-tolerance 2.0
