// Wire front-end tests (src/net/): framing hostility — truncated headers,
// bad magic/version, oversized dims, slow-loris byte-at-a-time writes,
// mid-request disconnects — plus the loopback integration contract: logits
// served over the socket are bit-identical to a direct SnnServer::submit of
// the same image.
//
// Linux-only like src/net/ itself; on other platforms this TU compiles to an
// empty suite. Carries the `concurrency` CTest label (wire server IO thread +
// serve scheduler threads), so the TSan lane runs it.
#ifdef __linux__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "net/wire_server.h"
#include "serve/server.h"
#include "snn/engine.h"
#include "snn/network.h"
#include "snn/registry.h"
#include "util/fd.h"
#include "util/rng.h"

namespace ttfs::net {
namespace {

Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng, float lo, float hi) {
  Tensor t{std::move(shape)};
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_f(lo, hi);
  return t;
}

// Small conv/pool/fc stack on 3x8x8 inputs; cheap enough for TSan runs.
snn::SnnNetwork make_net(Rng& rng) {
  snn::SnnNetwork net{snn::Base2Kernel{24, 4.0, 1.0}};
  net.add_conv(random_tensor({8, 3, 3, 3}, rng, -0.15F, 0.25F),
               random_tensor({8}, rng, -0.05F, 0.1F), 1, 1);
  net.add_pool(2, 2);
  net.add_fc(random_tensor({10, 8 * 4 * 4}, rng, -0.1F, 0.12F),
             random_tensor({10}, rng, -0.05F, 0.05F));
  return net;
}

// Blocking loopback client with a receive deadline — a hung server fails the
// test instead of wedging the suite.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_.reset(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    EXPECT_TRUE(fd_.valid());
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    const int one = 1;
    ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval tv{10, 0};  // every blocking read gives up after 10s
    ::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  void send_all(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_.get(), bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  // Slow-loris: dribble the bytes `chunk` at a time with a pause between
  // sends, so every header/meta/payload section arrives fragmented.
  void send_slowly(const std::vector<std::uint8_t>& bytes, std::size_t chunk,
                   std::chrono::microseconds pause) {
    for (std::size_t off = 0; off < bytes.size(); off += chunk) {
      const std::size_t n = std::min(chunk, bytes.size() - off);
      std::vector<std::uint8_t> piece{bytes.begin() + static_cast<std::ptrdiff_t>(off),
                                      bytes.begin() + static_cast<std::ptrdiff_t>(off + n)};
      send_all(piece);
      std::this_thread::sleep_for(pause);
    }
  }

  // Blocks until one full response frame arrives; false on EOF/timeout/parse
  // failure.
  bool recv_response(WireResponse* out) {
    for (;;) {
      const auto [buf, cap] = parser_.read_slot();
      if (cap == 0) return false;
      const ssize_t n = ::read(fd_.get(), buf, cap);
      if (n <= 0) return false;
      const ResponseParser::Event ev = parser_.consume(static_cast<std::size_t>(n));
      if (ev == ResponseParser::Event::kResponse) {
        *out = parser_.response();
        return true;
      }
      if (ev == ResponseParser::Event::kBad) return false;
    }
  }

  // True when the server has closed its end within the receive deadline —
  // either a clean FIN (read 0) or an RST (the server tore the connection
  // down with unread bytes still in its receive buffer).
  bool recv_eof() {
    std::uint8_t byte = 0;
    const ssize_t n = ::read(fd_.get(), &byte, 1);
    return n == 0 || (n < 0 && errno == ECONNRESET);
  }

  void shutdown_write() { ::shutdown(fd_.get(), SHUT_WR); }
  void close() { fd_.reset(); }
  int raw_fd() const { return fd_.get(); }

 private:
  util::Fd fd_;
  ResponseParser parser_;
};

// Serve stack + wire server on an ephemeral loopback port, shared per suite.
class NetWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng{42};
    registry_ = std::make_shared<snn::ModelRegistry>();
    backend_ = snn::make_backend(snn::BackendKind::kEventSim);
    registry_->load("m0", std::make_shared<snn::SnnNetwork>(make_net(rng)), backend_,
                    {3, 8, 8});
    serve::ServeOptions opts;
    opts.max_batch = 4;
    opts.max_delay = std::chrono::microseconds{200};
    opts.replicas = 2;
    opts.registry = registry_;
    opts.default_model = "m0";
    server_ = std::make_unique<serve::SnnServer>(opts);
    WireOptions wopts;
    wopts.idle_timeout = std::chrono::milliseconds{0};  // tests control closes
    wire_ = std::make_unique<WireServer>(*server_, wopts);
  }

  void TearDown() override {
    wire_.reset();
    server_.reset();
  }

  Tensor make_image(std::uint64_t seed) {
    Rng rng{seed};
    return random_tensor({3, 8, 8}, rng, 0.0F, 1.0F);
  }

  std::shared_ptr<snn::ModelRegistry> registry_;
  std::shared_ptr<const snn::InferenceBackend> backend_;
  std::unique_ptr<serve::SnnServer> server_;
  std::unique_ptr<WireServer> wire_;
};

// Patches raw header fields into an encoded frame (all offsets from the
// protocol.h layout table).
void poke_u16(std::vector<std::uint8_t>& frame, std::size_t off, std::uint16_t v) {
  std::memcpy(frame.data() + off, &v, sizeof(v));
}
void poke_u32(std::vector<std::uint8_t>& frame, std::size_t off, std::uint32_t v) {
  std::memcpy(frame.data() + off, &v, sizeof(v));
}

// --- integration: the whole point of the wire ---

TEST_F(NetWireTest, LogitsBitIdenticalToDirectSubmit) {
  constexpr int kRequests = 16;
  // Direct in-process submits first: the reference rows.
  std::vector<Tensor> reference;
  for (int i = 0; i < kRequests; ++i) {
    auto sub = server_->submit("m0", make_image(100 + static_cast<std::uint64_t>(i)));
    serve::ServeResult r = sub.result.get();
    ASSERT_EQ(r.status, serve::RequestStatus::kOk);
    reference.push_back(std::move(r.logits));
  }

  TestClient client{wire_->port()};
  for (int i = 0; i < kRequests; ++i) {
    const auto rid = static_cast<std::uint64_t>(1000 + i);
    client.send_all(encode_request(rid, "m0", make_image(100 + static_cast<std::uint64_t>(i))));
    WireResponse resp;
    ASSERT_TRUE(client.recv_response(&resp)) << "request " << i;
    ASSERT_EQ(resp.type, MessageType::kResult);
    ASSERT_EQ(resp.request_id, rid);
    ASSERT_EQ(resp.status, WireStatus::kOk);
    const Tensor& want = reference[static_cast<std::size_t>(i)];
    ASSERT_EQ(static_cast<std::int64_t>(resp.logits.size()), want.numel());
    for (std::int64_t j = 0; j < want.numel(); ++j) {
      // Bitwise, not approximate: the wire moves raw f32, and serving is
      // deterministic per sample regardless of batching/replica placement.
      EXPECT_EQ(resp.logits[static_cast<std::size_t>(j)], want[j])
          << "request " << i << " logit " << j;
    }
    EXPECT_EQ(resp.predicted, serve::predicted_class(want));
    EXPECT_GT(resp.latency_seconds, 0.0);
    EXPECT_GT(resp.spikes, 0U);
  }
}

TEST_F(NetWireTest, PipelinedRequestsAllAnswered) {
  // Fire a burst without reading a single response, then collect: exercises
  // outbox queuing and out-of-order completion matching by request_id.
  constexpr int kBurst = 32;
  TestClient client{wire_->port()};
  for (int i = 0; i < kBurst; ++i) {
    client.send_all(encode_request(static_cast<std::uint64_t>(i), "m0", make_image(7)));
  }
  std::vector<bool> seen(kBurst, false);
  for (int i = 0; i < kBurst; ++i) {
    WireResponse resp;
    ASSERT_TRUE(client.recv_response(&resp)) << "response " << i;
    ASSERT_EQ(resp.status, WireStatus::kOk);
    ASSERT_LT(resp.request_id, static_cast<std::uint64_t>(kBurst));
    EXPECT_FALSE(seen[resp.request_id]) << "duplicate response " << resp.request_id;
    seen[resp.request_id] = true;
  }
}

TEST_F(NetWireTest, PingPong) {
  TestClient client{wire_->port()};
  client.send_all(encode_ping(77));
  WireResponse resp;
  ASSERT_TRUE(client.recv_response(&resp));
  EXPECT_EQ(resp.type, MessageType::kPong);
  EXPECT_EQ(resp.request_id, 77U);
}

// --- per-request errors: the connection survives ---

TEST_F(NetWireTest, UnknownModelAnswersErrorAndConnectionSurvives) {
  TestClient client{wire_->port()};
  client.send_all(encode_request(1, "not-a-model", make_image(7)));
  WireResponse resp;
  ASSERT_TRUE(client.recv_response(&resp));
  EXPECT_EQ(resp.type, MessageType::kError);
  EXPECT_EQ(resp.status, WireStatus::kUnknownModel);
  EXPECT_EQ(resp.request_id, 1U);
  // Same connection still serves.
  client.send_all(encode_request(2, "m0", make_image(7)));
  ASSERT_TRUE(client.recv_response(&resp));
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(resp.request_id, 2U);
}

TEST_F(NetWireTest, ShapeMismatchAnswersBadRequestAndConnectionSurvives) {
  TestClient client{wire_->port()};
  Rng rng{3};
  client.send_all(encode_request(9, "m0", random_tensor({3, 4, 4}, rng, 0.0F, 1.0F)));
  WireResponse resp;
  ASSERT_TRUE(client.recv_response(&resp));
  EXPECT_EQ(resp.status, WireStatus::kBadRequest);
  client.send_all(encode_request(10, "m0", make_image(7)));
  ASSERT_TRUE(client.recv_response(&resp));
  EXPECT_EQ(resp.status, WireStatus::kOk);
}

// --- per-connection errors: error frame, then close ---

TEST_F(NetWireTest, BadMagicGetsErrorFrameThenClose) {
  TestClient client{wire_->port()};
  std::vector<std::uint8_t> frame = encode_ping(1);
  poke_u32(frame, 0, 0xDEADBEEF);
  client.send_all(frame);
  WireResponse resp;
  ASSERT_TRUE(client.recv_response(&resp));
  EXPECT_EQ(resp.type, MessageType::kError);
  EXPECT_EQ(resp.status, WireStatus::kBadMagic);
  EXPECT_TRUE(client.recv_eof());
}

TEST_F(NetWireTest, BadVersionGetsErrorFrameThenClose) {
  TestClient client{wire_->port()};
  std::vector<std::uint8_t> frame = encode_ping(1);
  poke_u16(frame, 4, kProtocolVersion + 1);
  client.send_all(frame);
  WireResponse resp;
  ASSERT_TRUE(client.recv_response(&resp));
  EXPECT_EQ(resp.status, WireStatus::kBadVersion);
  EXPECT_TRUE(client.recv_eof());
}

TEST_F(NetWireTest, OversizedBodyGetsBadFrameThenClose) {
  TestClient client{wire_->port()};
  std::vector<std::uint8_t> frame = encode_request(1, "m0", make_image(7));
  poke_u32(frame, 16, 64U << 20);  // body_len far beyond ParserLimits
  client.send_all({frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes)});
  WireResponse resp;
  ASSERT_TRUE(client.recv_response(&resp));
  EXPECT_EQ(resp.status, WireStatus::kBadFrame);
  EXPECT_TRUE(client.recv_eof());
}

TEST_F(NetWireTest, OversizedDimsGetBadFrameThenClose) {
  // First dim patched to 2^30: the dims product no longer matches the
  // declared body_len, which the meta section must reject without trying to
  // allocate a 2^36-element tensor.
  TestClient client{wire_->port()};
  std::vector<std::uint8_t> frame = encode_request(1, "m0", make_image(7));
  poke_u32(frame, static_cast<std::size_t>(kHeaderBytes) + 2 /* "m0" */, 1U << 30);
  // Send only through the meta section: the server must reject on the dims
  // alone, without waiting for (or reading) any payload byte. Stopping there
  // also keeps the close a clean FIN — no unread payload means no RST racing
  // the error frame back to us.
  client.send_all({frame.begin(),
                   frame.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes + 2 + 3 * 4)});
  WireResponse resp;
  ASSERT_TRUE(client.recv_response(&resp));
  EXPECT_EQ(resp.status, WireStatus::kBadFrame);
  EXPECT_TRUE(client.recv_eof());
}

// --- partial input: slow writers and vanishing clients ---

TEST_F(NetWireTest, SlowLorisByteAtATimeStillServes) {
  TestClient client{wire_->port()};
  // Header dribbled a byte at a time, body in small odd-sized chunks: every
  // parser section boundary lands mid-chunk at least once.
  const std::vector<std::uint8_t> frame = encode_request(5, "m0", make_image(7));
  client.send_slowly({frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes)},
                     1, std::chrono::microseconds{200});
  client.send_slowly({frame.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes), frame.end()},
                     13, std::chrono::microseconds{100});
  WireResponse resp;
  ASSERT_TRUE(client.recv_response(&resp));
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(resp.request_id, 5U);
}

TEST_F(NetWireTest, TruncatedHeaderThenDisconnectLeavesServerServing) {
  {
    TestClient dropper{wire_->port()};
    std::vector<std::uint8_t> frame = encode_ping(1);
    dropper.send_all({frame.begin(), frame.begin() + 7});  // 7 of 24 header bytes
    dropper.close();
  }
  TestClient client{wire_->port()};
  client.send_all(encode_request(2, "m0", make_image(7)));
  WireResponse resp;
  ASSERT_TRUE(client.recv_response(&resp));
  EXPECT_EQ(resp.status, WireStatus::kOk);
}

TEST_F(NetWireTest, MidRequestDisconnectLeavesServerServing) {
  {
    TestClient dropper{wire_->port()};
    const std::vector<std::uint8_t> frame = encode_request(1, "m0", make_image(7));
    // Header + model + dims + roughly half the payload, then vanish.
    dropper.send_all({frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(frame.size() / 2)});
    dropper.close();
  }
  TestClient client{wire_->port()};
  client.send_all(encode_request(2, "m0", make_image(7)));
  WireResponse resp;
  ASSERT_TRUE(client.recv_response(&resp));
  EXPECT_EQ(resp.status, WireStatus::kOk);
}

TEST_F(NetWireTest, HalfCloseStillDeliversPendingResponse) {
  // Client shuts down its write side right after sending — the server owes a
  // response on a half-closed connection and must still deliver it.
  TestClient client{wire_->port()};
  client.send_all(encode_request(3, "m0", make_image(7)));
  client.shutdown_write();
  WireResponse resp;
  ASSERT_TRUE(client.recv_response(&resp));
  EXPECT_EQ(resp.status, WireStatus::kOk);
  EXPECT_EQ(resp.request_id, 3U);
  EXPECT_TRUE(client.recv_eof());  // nothing owed -> server closes
}

// --- lifecycle ---

TEST_F(NetWireTest, IdleTimeoutReapsSilentConnections) {
  serve::ServeOptions opts;
  opts.registry = registry_;
  opts.default_model = "m0";
  serve::SnnServer server{opts};
  WireOptions wopts;
  wopts.idle_timeout = std::chrono::milliseconds{100};
  WireServer wire{server, wopts};
  TestClient client{wire.port()};
  EXPECT_TRUE(client.recv_eof()) << "idle connection was not reaped";
  const WireStats stats = wire.stats();
  EXPECT_EQ(stats.idle_closed, 1U);
}

TEST_F(NetWireTest, StopDrainsInFlightResponses) {
  TestClient client{wire_->port()};
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    client.send_all(encode_request(static_cast<std::uint64_t>(i), "m0", make_image(7)));
  }
  // Stop immediately: every submitted request must still be answered before
  // the sockets close (the graceful-drain contract).
  std::thread stopper{[this] { wire_->stop(); }};
  int answered = 0;
  WireResponse resp;
  while (client.recv_response(&resp)) {
    EXPECT_EQ(resp.status, WireStatus::kOk);
    ++answered;
  }
  stopper.join();
  // Requests the server had fully parsed before stop() are all answered;
  // ones still in the socket buffer may be dropped (never partially
  // answered). At least one had certainly arrived.
  EXPECT_GT(answered, 0);
  const WireStats stats = wire_->stats();
  EXPECT_EQ(stats.requests, stats.responses);
  EXPECT_EQ(stats.in_flight, 0U);
  EXPECT_EQ(stats.active, 0U);
}

TEST_F(NetWireTest, StatsCountTheTraffic) {
  TestClient client{wire_->port()};
  client.send_all(encode_request(1, "m0", make_image(7)));
  WireResponse resp;
  ASSERT_TRUE(client.recv_response(&resp));
  client.close();
  // accepted is immediate; closed catches up once the IO thread sees EOF.
  for (int i = 0; i < 100 && wire_->stats().active != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  const WireStats stats = wire_->stats();
  EXPECT_EQ(stats.accepted, 1U);
  EXPECT_EQ(stats.closed, 1U);
  EXPECT_EQ(stats.active, 0U);
  EXPECT_EQ(stats.requests, 1U);
  EXPECT_EQ(stats.responses, 1U);
  EXPECT_GT(stats.bytes_in, 0U);
  EXPECT_GT(stats.bytes_out, 0U);
  EXPECT_EQ(stats.in_flight, 0U);
}

}  // namespace
}  // namespace ttfs::net

#endif  // __linux__
