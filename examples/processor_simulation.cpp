// Hardware-model explorer: run the SNN processor and TPU baselines on any
// VGG-16 workload and dump the per-layer cycle/energy schedule.
//
//   ./processor_simulation [--image 32] [--classes 10] [--pes 128]
//       [--pe log|linear] [--no-reuse] [--activity 0.4]
#include <iostream>

#include "hw/processor.h"
#include "hw/tpu.h"
#include "hw/workload.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace ttfs;
  const CliArgs args{argc, argv};

  const std::int64_t image = args.get_int("image", 32);
  const int classes = args.get_int("classes", 10);
  hw::NetworkWorkload workload = hw::vgg16_workload("vgg16", image, classes);
  if (args.has("activity")) {
    const double a = args.get_double("activity", 0.4);
    for (auto& v : workload.activity) v = a;
    workload.activity[0] = 0.9;  // input pixels
  }

  hw::ArchConfig arch;
  arch.num_pes = args.get_int("pes", 128);
  arch.pe = args.get_string("pe", "log") == "linear" ? hw::PeKind::kLinear : hw::PeKind::kLog;
  arch.input_buffer_reuse = !args.get_flag("no-reuse");

  const hw::SnnProcessorModel model{arch, hw::default_tech()};
  const hw::ProcessorReport report = model.run(workload);

  Table layers{"per-layer schedule (" + workload.name + ", " + std::to_string(image) + "x" +
               std::to_string(image) + ")"};
  layers.set_header({"layer", "cycles", "SOPs", "in spikes", "out spikes", "energy uJ",
                     "DRAM Mbit"});
  for (const auto& l : report.layers) {
    layers.add_row({l.name, std::to_string(l.cycles), std::to_string(l.sops),
                    std::to_string(l.in_spikes), std::to_string(l.out_spikes),
                    Table::num(l.energy.total_uj(), 2), Table::num(l.dram_bits / 1e6, 2)});
  }
  layers.print(std::cout);

  Table summary{"chip summary"};
  summary.set_header({"metric", "SNN processor", "TPU 16x16 baseline"});
  const hw::TpuReport tpu = run_tpu(workload, hw::TpuConfig{}, hw::default_tech());
  summary.add_row({"fps", Table::num(report.fps, 1), Table::num(tpu.fps, 1)});
  summary.add_row({"energy/image uJ", Table::num(report.energy_per_image_uj(), 1),
                   Table::num(tpu.energy_per_image_uj(), 1)});
  summary.add_row({"chip power mW", Table::num(report.power_mw, 1), Table::num(tpu.power_mw, 1)});
  summary.add_row({"area mm2", Table::num(report.area_mm2, 4), Table::num(tpu.area_mm2, 4)});
  summary.add_row({"sustained throughput", Table::num(report.gsops, 1) + " GSOP/s",
                   Table::num(tpu.gmacs, 1) + " GMAC/s"});
  summary.print(std::cout);
  return 0;
}
