// Spike raster explorer: runs one image through the timestep-accurate event
// simulator and dumps (a) a per-layer spike raster CSV and (b) the per-layer
// timing histogram — the kind of trace Fig. 1's timeline illustrates.
//
//   ./spike_raster [--T 24] [--tau 4] [--out artifacts/raster]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "cat/conversion.h"
#include "cat/trainer.h"
#include "data/synthetic.h"
#include "nn/vgg.h"
#include "snn/engine.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace ttfs;
  const CliArgs args{argc, argv};
  const std::string out_dir = args.get_string("out", "artifacts/raster");

  // Train a tiny CAT model so the spikes are meaningful.
  data::SyntheticSpec spec = data::syn_cifar10_spec();
  spec.classes = 5;
  spec.image = 12;
  const auto train = data::generate_synthetic(spec, 400, 0);
  const auto test = data::generate_synthetic(spec, 50, 1);

  cat::TrainConfig cfg = cat::TrainConfig::compressed(10);
  cfg.window = args.get_int("T", 24);
  cfg.tau = args.get_double("tau", 4.0);
  cfg.verbose = false;
  Rng rng{cfg.seed};
  nn::Model model = nn::build_vgg(nn::vgg_micro_spec(spec.classes), 3, spec.image, rng);
  (void)cat::train_cat(model, train, test, cfg);
  snn::SnnNetwork net = cat::convert_to_snn(model, cfg.kernel(), train);

  // One test image through an engine session on the event-sim backend; the
  // full spike trace is just a RunOptions request away.
  const std::int64_t pix = test.images.numel() / test.size();
  Tensor img{{3, spec.image, spec.image},
             std::vector<float>(test.images.data(), test.images.data() + pix)};
  snn::InferenceSession session = snn::Engine{net}.session(snn::BackendKind::kEventSim);
  snn::RunOptions ropts;
  ropts.logits = false;  // trace.logits carries them
  ropts.traces = true;
  const std::vector<const Tensor*> one{&img};
  const snn::EventTrace trace = std::move(session.run(snn::BatchView{one}, ropts).traces[0]);

  std::filesystem::create_directories(out_dir);
  std::ofstream raster{out_dir + "/raster.csv"};
  raster << "layer,neuron,global_timestep\n";
  // Layer l fires during window l (Fig. 1): global time = l*T + step.
  for (std::size_t l = 0; l < trace.layers.size(); ++l) {
    for (const snn::Spike& s : trace.layers[l].spikes) {
      raster << l << ',' << s.neuron << ',' << l * static_cast<std::size_t>(cfg.window) + s.step
             << '\n';
    }
  }

  Table hist{"per-layer spike timing (window-relative)"};
  hist.set_header({"layer", "neurons", "spikes", "firing %", "median step", "encoder cycles"});
  for (std::size_t l = 0; l < trace.layers.size(); ++l) {
    const auto& lt = trace.layers[l];
    std::vector<int> steps;
    for (const snn::Spike& s : lt.spikes) steps.push_back(s.step);
    std::sort(steps.begin(), steps.end());
    const int median = steps.empty() ? -1 : steps[steps.size() / 2];
    hist.add_row({std::to_string(l), std::to_string(lt.neuron_count),
                  std::to_string(lt.spikes.size()),
                  Table::num(100.0 * static_cast<double>(lt.spikes.size()) /
                                 static_cast<double>(std::max<std::int64_t>(1, lt.neuron_count)),
                             1),
                  std::to_string(median), std::to_string(lt.encoder_cycles)});
  }
  hist.print(std::cout);
  std::cout << "raster written to " << out_dir << "/raster.csv ("
            << trace.total_spikes() << " spikes, "
            << trace.total_integration_ops() << " synaptic ops)\n";
  std::cout << "predicted class logits:";
  for (std::int64_t i = 0; i < trace.logits.numel(); ++i) std::cout << ' ' << trace.logits[i];
  std::cout << '\n';
  return 0;
}
