// Full CAT experiment driver with command-line control — the workhorse for
// custom experiments beyond the canned benches.
//
//   ./cat_training_pipeline --dataset syn-c100 --mode full --T 24 --tau 4
//       --epochs 20 --bits 5 --z 1 [--save model.bin] [--cifar10 <dir>]
//
// Prints the training history, conversion loss, T2FSNN-style latency, log-
// quantized accuracy, and a per-layer spiking profile.
#include <iostream>

#include "cat/conversion.h"
#include "cat/logquant.h"
#include "cat/trainer.h"
#include "data/cifar.h"
#include "data/synthetic.h"
#include "hw/activity.h"
#include "nn/metrics.h"
#include "nn/serialize.h"
#include "nn/vgg.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace ttfs;
  const CliArgs args{argc, argv};

  // --- dataset selection ---
  data::LabeledData train, test;
  std::int64_t image = 0;
  int channels = 3;
  const std::string cifar_dir = args.get_string("cifar10", "");
  if (!cifar_dir.empty()) {
    auto tr = data::load_cifar10(cifar_dir, true);
    auto te = data::load_cifar10(cifar_dir, false);
    if (!tr || !te) {
      std::cerr << "CIFAR-10 binaries not found under " << cifar_dir << "\n";
      return 1;
    }
    train = std::move(*tr);
    test = std::move(*te);
    image = 32;
  } else {
    const std::string name = args.get_string("dataset", "syn-c10");
    data::SyntheticSpec spec = name == "syn-c100"  ? data::syn_cifar100_spec()
                               : name == "syn-tiny" ? data::syn_tiny_spec()
                                                    : data::syn_cifar10_spec();
    train = data::generate_synthetic(spec, args.get_int("train", 800), 0);
    test = data::generate_synthetic(spec, args.get_int("test", 300), 1);
    image = spec.image;
    channels = spec.channels;
  }

  // --- training configuration ---
  cat::TrainConfig cfg = cat::TrainConfig::compressed(args.get_int("epochs", 16));
  cfg.window = args.get_int("T", 24);
  cfg.tau = args.get_double("tau", 4.0);
  cfg.base_lr = static_cast<float>(args.get_double("lr", cfg.base_lr));
  if (args.has("ttfs-epoch")) cfg.schedule.ttfs_epoch = args.get_int("ttfs-epoch", cfg.schedule.ttfs_epoch);
  cfg.augment = args.get_flag("augment");
  const std::string mode = args.get_string("mode", "full");
  cfg.schedule.mode = mode == "clip"        ? cat::CatMode::kClipOnly
                      : mode == "clip-input" ? cat::CatMode::kClipInputTtfs
                                             : cat::CatMode::kFull;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  cfg.verbose = true;

  Rng rng{cfg.seed};
  const std::string arch_name = args.get_string("arch", "small");
  const nn::VggSpec arch = arch_name == "mini"  ? nn::vgg_mini_spec(train.classes)
                           : arch_name == "micro" ? nn::vgg_micro_spec(train.classes)
                                                  : nn::vgg_small_spec(train.classes);
  nn::Model model = nn::build_vgg(arch, channels, image, rng);
  std::cout << "architecture (" << arch.name << "):\n" << model.summary();
  std::cout << "parameters: " << model.param_count() << "\n\n";

  const cat::TrainHistory history = cat::train_cat(model, train, test, cfg);
  if (history.diverged) std::cout << "WARNING: training diverged at some point\n";

  // --- conversion & evaluation ---
  const auto batches = data::make_batches(test, 64, nullptr);
  const double ann_acc = nn::evaluate_accuracy(model, batches);
  snn::SnnNetwork net = cat::convert_to_snn(model, cfg.kernel(), train);
  const double snn_acc = nn::evaluate_accuracy_fn(
      [&net](const Tensor& images) { return net.forward(images); }, batches);

  cat::LogQuantConfig qc;
  qc.bits = args.get_int("bits", 5);
  qc.z = args.get_int("z", 1);
  snn::SnnNetwork qnet = cat::convert_to_snn(model, cfg.kernel(), train);
  const auto qinfo = cat::log_quantize_network(qnet, qc);
  const double q_acc = nn::evaluate_accuracy_fn(
      [&qnet](const Tensor& images) { return qnet.forward(images); }, batches);

  Table results{"results"};
  results.set_header({"stage", "accuracy %", "note"});
  results.add_row({"ANN (CAT, " + to_string(cfg.schedule.mode) + ")", Table::num(ann_acc, 2),
                   "T=" + std::to_string(cfg.window) + " tau=" + Table::num(cfg.tau, 1)});
  results.add_row({"SNN (converted)", Table::num(snn_acc, 2),
                   "loss " + Table::signed_num(snn_acc - ann_acc, 2) + ", latency " +
                       std::to_string(net.latency_timesteps()) + " steps"});
  results.add_row({"SNN (log " + std::to_string(qc.bits) + "b, z=" + std::to_string(qc.z) + ")",
                   Table::num(q_acc, 2),
                   "a_w = 2^-1/" + std::to_string(1 << qc.z)});
  results.print(std::cout);

  // --- per-layer spiking profile ---
  const auto activity = hw::measure_activity(net, data::head(test, 64));
  Table prof{"per-fire-phase spiking activity"};
  prof.set_header({"phase", "firing fraction"});
  for (std::size_t i = 0; i < activity.size(); ++i) {
    prof.add_row({i == 0 ? "input encoding" : "layer " + std::to_string(i),
                  Table::num(activity[i], 3)});
  }
  prof.print(std::cout);

  std::int64_t zeroed = 0, weights = 0;
  for (const auto& info : qinfo) {
    zeroed += info.zeroed;
    weights += info.weights;
  }
  std::cout << "log-quant: " << weights << " weights, " << zeroed
            << " underflowed to the zero code\n";

  const std::string save = args.get_string("save", "");
  if (!save.empty()) {
    nn::save_model(model, save);
    std::cout << "saved trained ANN to " << save << "\n";
  }
  return 0;
}
