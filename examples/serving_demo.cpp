// Serving walkthrough: the request-level API over the SNN inference core.
//
//   ./build/examples/serving_demo [--requests 12] [--clients 3]
//                                 [--max-batch 4] [--max-delay-us 2000]
//                                 [--replicas 2]
//                                 [--backend event|gemm|reference]
//
// Five things in ~180 lines:
//   1. concurrent clients submit single images and get futures back;
//   2. the dynamic micro-batcher forms batches (size or deadline), a router
//      hands them to --replicas replica sessions over the injected
//      snn::InferenceBackend, and the per-request results are bit-identical
//      to sequential inference on that backend whichever replica served them;
//   3. cancellation and graceful drain, with the server's own stats line;
//   4. overload: a bounded submit queue whose admission policy (reject vs
//      shed-oldest) decides who pays when a burst outruns the replicas;
//   5. multi-model serving: several models behind one snn::ModelRegistry,
//      per-model micro-batches, and a live hot-swap of one model's weights
//      under concurrent load — in-flight requests drain on the old weights,
//      new submissions pick up the new ones, nothing fails.
#include <chrono>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "snn/engine.h"
#include "snn/network.h"
#include "snn/registry.h"
#include "util/cli.h"
#include "util/rng.h"

using namespace ttfs;

namespace {

Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng, float lo, float hi) {
  Tensor t{std::move(shape)};
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_f(lo, hi);
  return t;
}

// The demo's conv/pool/fc stack on 3x8x8 inputs; each call draws fresh
// weights, so two calls give two genuinely different models.
std::shared_ptr<snn::SnnNetwork> make_net(Rng& rng) {
  auto net = std::make_shared<snn::SnnNetwork>(snn::Base2Kernel{24, 4.0, 1.0});
  net->add_conv(random_tensor({8, 3, 3, 3}, rng, -0.15F, 0.25F),
                random_tensor({8}, rng, -0.05F, 0.1F), 1, 1);
  net->add_pool(2, 2);
  net->add_fc(random_tensor({10, 8 * 4 * 4}, rng, -0.1F, 0.12F),
              random_tensor({10}, rng, -0.05F, 0.05F));
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args{argc, argv};
  const std::int64_t requests = args.get_int("requests", 12);
  const std::int64_t clients = args.get_int("clients", 3);
  const std::int64_t max_batch = args.get_int("max-batch", 4);
  const int max_delay_us = args.get_int("max-delay-us", 2000);
  const std::int64_t replicas = args.get_int("replicas", 2);

  // A small random-weight TTFS net on 3x8x8 inputs — the serving layer works
  // the same for a CAT-trained, converted network (see quickstart.cpp).
  Rng rng{42};
  const std::shared_ptr<snn::SnnNetwork> net_ptr = make_net(rng);
  snn::SnnNetwork& net = *net_ptr;

  serve::ServeOptions opts;
  opts.max_batch = max_batch;
  opts.max_delay = std::chrono::microseconds{max_delay_us};
  opts.replicas = replicas;  // R sessions over one shared backend
  // Any snn::InferenceBackend plugs in here — stock or caller-defined.
  opts.backend = snn::make_backend(
      snn::backend_kind_from_string(args.get_string("backend", "event")));
  serve::SnnServer server{net, {3, 8, 8}, opts};
  std::cout << "server up: max_batch=" << max_batch << " max_delay=" << max_delay_us
            << "us replicas=" << server.replicas() << " backend=" << server.backend().name()
            << "\n";

  // Concurrent clients, each submitting its share and printing as results
  // land. Futures make the blocking point explicit per request.
  std::mutex print_mu;
  std::vector<std::thread> workers;
  for (std::int64_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      Rng image_rng{100 + static_cast<std::uint64_t>(c)};
      for (std::int64_t i = c; i < requests; i += clients) {
        auto sub = server.submit(random_tensor({3, 8, 8}, image_rng, 0.0F, 1.0F));
        serve::ServeResult r = sub.result.get();
        const std::lock_guard<std::mutex> lock{print_mu};
        std::cout << "  client " << c << " request " << sub.id << ": class " << r.predicted
                  << " in " << r.latency_seconds * 1e3 << " ms ("
                  << r.stats.avg_firing_rate() * 100 << "% firing)\n";
      }
    });
  }
  for (auto& w : workers) w.join();

  // Cancellation: with a long deadline and nothing else queued, the request
  // sits in the batcher until we rip it back out.
  serve::ServeOptions slow = opts;
  slow.max_delay = std::chrono::seconds{10};
  serve::SnnServer slow_server{net, {3, 8, 8}, slow};
  auto doomed = slow_server.submit(random_tensor({3, 8, 8}, rng, 0.0F, 1.0F));
  std::cout << "cancel(" << doomed.id << ") -> " << std::boolalpha
            << slow_server.cancel(doomed.id)
            << ", status kCancelled=" << (doomed.result.get().status ==
                                          serve::RequestStatus::kCancelled)
            << "\n";
  slow_server.stop();

  server.stop();  // graceful: drains anything still pending
  std::cout << "stats: " << server.stats().describe() << "\n";
  for (const serve::ReplicaStats& r : server.stats().replicas) {
    std::cout << "  replica: " << r.completed << " served in " << r.batches
              << " batches (mean " << r.mean_batch_size << ")\n";
  }

  // Overload: a queue of 4 slots behind a stalled batcher (long deadline, big
  // max_batch) takes a burst of 10. Under kRejectWhenFull the 5th..10th are
  // refused at the door; under kShedOldest the burst is admitted but evicts
  // the oldest queued requests — fresh work replaces stale work. Either way
  // the server degrades predictably instead of queueing without bound.
  for (const serve::AdmissionPolicy policy :
       {serve::AdmissionPolicy::kRejectWhenFull, serve::AdmissionPolicy::kShedOldest}) {
    serve::ServeOptions overload = opts;
    overload.max_batch = 16;
    overload.max_delay = std::chrono::milliseconds{200};
    overload.queue_capacity = 4;
    overload.admission = policy;
    serve::SnnServer bursty{net, {3, 8, 8}, overload};
    std::vector<serve::SnnServer::Submission> burst;
    for (int i = 0; i < 10; ++i) {
      burst.push_back(bursty.submit(random_tensor({3, 8, 8}, rng, 0.0F, 1.0F)));
    }
    int ok = 0, refused = 0;
    for (auto& sub : burst) {
      const serve::RequestStatus status = sub.result.get().status;
      (status == serve::RequestStatus::kOk ? ok : refused)++;
    }
    bursty.stop();
    std::cout << "overload (" << serve::to_string(policy) << ", capacity 4): " << ok
              << " served, " << refused << " refused -> " << bursty.stats().describe()
              << "\n";
  }

  // Multi-model serving with a live hot-swap under load: two models behind
  // one ModelRegistry-fronted server. Clients name a model per request,
  // batches never mix models, and mid-traffic we swap "alpha"'s weights —
  // requests already in flight drain on the OLD weights (their handle lease
  // keeps net + weight pack alive), later submissions run the NEW ones, and
  // every future resolves kOk.
  const std::shared_ptr<const snn::InferenceBackend> backend = opts.backend;
  auto registry = std::make_shared<snn::ModelRegistry>();
  registry->load("alpha", make_net(rng), backend, {3, 8, 8});
  registry->load("beta", make_net(rng), backend, {3, 8, 8});
  serve::ServeOptions multi = opts;
  multi.backend = nullptr;  // each registered model carries its own backend
  multi.registry = registry;
  serve::SnnServer zoo{multi};
  std::cout << "multi-model server up: models alpha+beta, replicas=" << zoo.replicas() << "\n";

  std::vector<std::thread> mixed;
  for (std::int64_t c = 0; c < 2; ++c) {
    mixed.emplace_back([&, c] {
      Rng image_rng{200 + static_cast<std::uint64_t>(c)};
      for (int i = 0; i < 12; ++i) {
        const std::string model = (i % 2 == 0) ? "alpha" : "beta";
        auto sub = zoo.submit(model, random_tensor({3, 8, 8}, image_rng, 0.0F, 1.0F));
        serve::ServeResult r = sub.result.get();
        const std::lock_guard<std::mutex> lock{print_mu};
        std::cout << "  [" << r.model_id << "] request " << sub.id << ": class "
                  << r.predicted << " (" << (r.status == serve::RequestStatus::kOk
                                                 ? "ok" : "refused") << ")\n";
      }
    });
  }
  // Hot-swap while the clients are mid-stream: the id flips to fresh weights
  // atomically; nothing running is disturbed.
  registry->load("alpha", make_net(rng), backend, {3, 8, 8});
  {
    const std::lock_guard<std::mutex> lock{print_mu};
    std::cout << "  >> swapped model 'alpha' under load (version now "
              << registry->acquire("alpha")->version() << ")\n";
  }
  for (auto& t : mixed) t.join();
  zoo.stop();
  std::cout << "registry: " << registry->stats().describe() << "\n";
  for (const serve::ModelStats& m : zoo.stats().models) {
    std::cout << "  model " << m.id << ": " << m.completed << " served in " << m.batches
              << " batches (mean " << m.mean_batch_size << "), p95 " << m.latency_p95_ms
              << " ms\n";
  }
  return 0;
}
