// Quickstart: the whole paper pipeline in ~60 lines.
//
//   1. make a small synthetic dataset
//   2. train a VGG-style ANN with conversion-aware training (CAT)
//   3. convert it to a TTFS SNN (BN fusion + output weight norm)
//   4. quantize weights to 5-bit log representation (a_w = 2^-1/2)
//   5. compare ANN / SNN / quantized-SNN accuracy and estimate hardware cost
//
// Build & run:  ./build/examples/quickstart [--epochs N]
#include <iostream>

#include "cat/conversion.h"
#include "cat/deploy.h"
#include "cat/logquant.h"
#include "cat/trainer.h"
#include "data/synthetic.h"
#include "hw/activity.h"
#include "hw/processor.h"
#include "nn/metrics.h"
#include "nn/vgg.h"
#include "snn/engine.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace ttfs;
  const CliArgs args{argc, argv};

  // 1. Data: 5-class procedural images, 12x12x3.
  data::SyntheticSpec spec = data::syn_cifar10_spec();
  spec.classes = 5;
  spec.image = 12;
  const auto train = data::generate_synthetic(spec, 500, 0);
  const auto test = data::generate_synthetic(spec, 200, 1);

  // 2. CAT training: ReLU -> clip -> phi_TTFS on a compressed schedule.
  cat::TrainConfig cfg = cat::TrainConfig::compressed(args.get_int("epochs", 12));
  cfg.window = 24;  // T
  cfg.tau = 4.0;    // power of two -> logarithmic hardware path applies
  cfg.schedule.mode = cat::CatMode::kFull;

  Rng rng{cfg.seed};
  nn::Model model = nn::build_vgg(nn::vgg_micro_spec(spec.classes), 3, spec.image, rng);
  std::cout << "training (" << cfg.epochs << " epochs, T=" << cfg.window << ", tau=" << cfg.tau
            << ")...\n";
  const cat::TrainHistory history = cat::train_cat(model, train, test, cfg);
  std::cout << "final ANN test accuracy: " << history.final_test_acc << "%\n";

  // 3. Conversion. Inference runs through an engine session — swap kGemm for
  // kEventSim to evaluate on the spike-order-accurate simulator instead.
  snn::SnnNetwork snn_net = cat::convert_to_snn(model, cfg.kernel(), train);
  snn::InferenceSession session = snn::Engine{snn_net}.session(snn::BackendKind::kGemm);
  const auto evaluate = [&session](const auto& batches) {
    return nn::evaluate_accuracy_fn(
        [&session](const Tensor& images) { return session.run(snn::BatchView{images}).logits; },
        batches);
  };
  const auto batches = data::make_batches(test, 64, nullptr);
  const double snn_acc = evaluate(batches);
  std::cout << "SNN accuracy after conversion: " << snn_acc << "%  (conversion loss "
            << snn_acc - history.final_test_acc << ")\n";
  std::cout << "SNN latency: " << snn_net.latency_timesteps() << " timesteps ("
            << snn_net.weighted_layer_count() << " weighted layers + input, T = "
            << cfg.window << ")\n";

  // 4. 5-bit logarithmic weights (the paper's hardware configuration).
  cat::LogQuantConfig qc;
  qc.bits = 5;
  qc.z = 1;  // a_w = 2^-1/2
  cat::log_quantize_network(snn_net, qc);
  // Same session: it reads the network's layers live, so the next run sees
  // the quantized weights (an event-sim session would lazily repack, too).
  const double q_acc = evaluate(batches);
  std::cout << "SNN accuracy with 5-bit log weights: " << q_acc << "%\n";

  // 5. Hardware cost on this network with measured spiking activity.
  hw::NetworkWorkload w = hw::workload_from_snn(snn_net, 3, spec.image, "quickstart");
  w.activity = hw::measure_activity(snn_net, data::head(test, 64));
  hw::ArchConfig arch;
  arch.window = cfg.window;
  const hw::ProcessorReport report = hw::SnnProcessorModel{arch, hw::default_tech()}.run(w);
  std::cout << "SNN processor model: " << report.energy_per_image_uj() << " uJ/image, "
            << report.fps << " fps, " << report.power_mw << " mW, " << report.area_mm2
            << " mm2\n";

  // 6. Pack the deployment image — the bit stream the processor's DMA pulls
  // from DRAM (its size is exactly Table 4's per-image weight traffic).
  const cat::DeployStats deploy =
      cat::write_deploy_image(snn_net, qc, "artifacts/quickstart.ttfd");
  std::cout << "deploy image: " << deploy.file_bytes << " bytes ("
            << deploy.weight_payload_bytes << " packed weight bytes for " << deploy.weights
            << " weights at " << qc.bits << " bits)\n";
  return 0;
}
