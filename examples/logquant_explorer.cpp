// Logarithmic-quantization playground: shows the code grid for any
// (bits, z), the quantization error over a random weight population, and a
// bit-exactness check of the LUT+shift PE datapath against floating point.
//
//   ./logquant_explorer [--bits 5] [--z 1] [--tau-p 2]
#include <cmath>
#include <iostream>

#include "cat/logpe.h"
#include "cat/logquant.h"
#include "snn/kernel.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace ttfs;
  const CliArgs args{argc, argv};

  cat::LogQuantConfig qc;
  qc.bits = args.get_int("bits", 5);
  qc.z = args.get_int("z", 1);

  std::cout << "log-base a_w = 2^-(1/" << (1 << qc.z) << "), " << qc.bits << " bits => "
            << qc.magnitude_levels() << " magnitude levels + zero + sign\n\n";

  Table grid{"code grid (FSR = 1.0)"};
  grid.set_header({"code q", "magnitude 2^(q*step)"});
  for (int q = 0; q > -qc.magnitude_levels(); --q) {
    grid.add_row({std::to_string(q), Table::num(std::exp2(q * qc.step()), 6)});
  }
  grid.print(std::cout);

  // Quantization error over a half-normal weight population.
  Rng rng{42};
  Tensor w{{4096}};
  for (std::int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal_f(0.0F, 0.2F);
  Tensor q = w.reshaped({4096});
  const cat::LayerQuantInfo info = cat::log_quantize_tensor(q, qc);
  std::cout << "\nrandom N(0, 0.2) weights: fsr=" << Table::num(info.fsr, 4)
            << " mse=" << info.mse << " zeroed=" << info.zeroed << "/" << info.weights << "\n";

  // PE datapath check: product via exponent add + LUT + shift vs float.
  cat::LogPeConfig pe_cfg;
  pe_cfg.p = args.get_int("tau-p", 2);  // tau = 2^p
  pe_cfg.z = qc.z;
  cat::LogPe pe{pe_cfg};
  const snn::Base2Kernel kernel{24, std::exp2(pe_cfg.p), 1.0};

  double max_rel_err = 0.0;
  for (int qcode = -10; qcode <= 0; ++qcode) {
    for (int step = 0; step < kernel.window(); ++step) {
      pe.reset();
      pe.accumulate(1, qcode, step);
      const double ref = std::exp2(qcode * qc.step()) * kernel.level(step);
      if (ref > 1e-9) max_rel_err = std::max(max_rel_err, std::fabs(pe.membrane() - ref) / ref);
    }
  }
  std::cout << "LUT(" << pe_cfg.lut_entries() << " entries, " << pe_cfg.lut_bits
            << "b)+shift datapath vs float: max relative error " << max_rel_err << "\n";
  std::cout << (max_rel_err < 1e-3 ? "PASS: log PE is numerically faithful\n"
                                   : "FAIL: log PE error too large\n");
  return max_rel_err < 1e-3 ? 0 : 1;
}
